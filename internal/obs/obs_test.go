package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the full exposition rendering: counter, gauge
// and histogram families, label rendering and sorting, help and label-value
// escaping, cumulative buckets.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests\nby peer \\ path", L("peer", `a"b\c`)).Add(3)
	r.Counter("test_requests_total", "Requests\nby peer \\ path", L("peer", "plain")).Inc()
	r.Gauge("test_depth", "Queue depth").Set(2.5)
	h := r.Histogram("test_latency_seconds", "Latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.1) // upper bounds are inclusive
	h.Observe(0.5)
	h.Observe(7)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_depth Queue depth
# TYPE test_depth gauge
test_depth 2.5
# HELP test_latency_seconds Latency
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 2
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 7.65
test_latency_seconds_count 4
# HELP test_requests_total Requests\nby peer \\ path
# TYPE test_requests_total counter
test_requests_total{peer="a\"b\\c"} 3
test_requests_total{peer="plain"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "c", L("k", "v"))
	b := r.Counter("c_total", "c", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if other := r.Counter("c_total", "c", L("k", "w")); other == a {
		t.Fatal("distinct label sets share a counter")
	}
	h1 := r.Histogram("h_seconds", "h", []float64{1, 2})
	h2 := r.Histogram("h_seconds", "h", nil)
	if h1 != h2 {
		t.Fatal("same histogram name returned distinct children")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("c_total", "now a gauge")
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(-1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported non-zero values")
	}
}

func TestCounterRejectsDecrease(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter accepted a negative add: %v", c.Value())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges_seconds", "", []float64{1})
	h.Observe(1) // exactly the bound: lower bucket
	h.Observe(1.0001)
	if h.counts[0].Load() != 1 || h.counts[1].Load() != 1 {
		t.Fatalf("bucket split wrong: %d/%d", h.counts[0].Load(), h.counts[1].Load())
	}
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "requests").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 1<<12)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "served_total 9") {
		t.Fatalf("body missing sample: %s", buf[:n])
	}
}

// TestConcurrentUpdatesAndRender hammers one registry from many goroutines —
// updates, re-registrations and renders interleaved — and checks the final
// totals. Run under -race this is the registry's concurrency contract.
func TestConcurrentUpdatesAndRender(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc_total", "")
			g := r.Gauge("conc_depth", "")
			h := r.Histogram("conc_seconds", "", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%2) * 0.9)
				// Re-registration races against rendering and updates.
				r.Counter("conc_total", "").Add(0)
			}
		}(w)
	}
	renderDone := make(chan struct{})
	go func() {
		defer close(renderDone)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-renderDone
	if got := r.Counter("conc_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("conc_depth", "").Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	if got := r.Histogram("conc_seconds", "", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default registry not a stable singleton")
	}
}
