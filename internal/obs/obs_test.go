package obs

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the full exposition rendering: counter, gauge
// and histogram families, label rendering and sorting, help and label-value
// escaping, cumulative buckets.
func TestExpositionGolden(t *testing.T) {
	// Bare registry: NewRegistry would add aacc_build_info /
	// aacc_process_start_time_seconds, whose values are host-dependent.
	r := newBareRegistry()
	r.Counter("test_requests_total", "Requests\nby peer \\ path", L("peer", `a"b\c`)).Add(3)
	r.Counter("test_requests_total", "Requests\nby peer \\ path", L("peer", "plain")).Inc()
	r.Gauge("test_depth", "Queue depth").Set(2.5)
	h := r.Histogram("test_latency_seconds", "Latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.1) // upper bounds are inclusive
	h.Observe(0.5)
	h.Observe(7)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_depth Queue depth
# TYPE test_depth gauge
test_depth 2.5
# HELP test_latency_seconds Latency
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 2
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 7.65
test_latency_seconds_count 4
# HELP test_requests_total Requests\nby peer \\ path
# TYPE test_requests_total counter
test_requests_total{peer="a\"b\\c"} 3
test_requests_total{peer="plain"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "c", L("k", "v"))
	b := r.Counter("c_total", "c", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if other := r.Counter("c_total", "c", L("k", "w")); other == a {
		t.Fatal("distinct label sets share a counter")
	}
	h1 := r.Histogram("h_seconds", "h", []float64{1, 2})
	h2 := r.Histogram("h_seconds", "h", nil)
	if h1 != h2 {
		t.Fatal("same histogram name returned distinct children")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("c_total", "now a gauge")
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(-1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported non-zero values")
	}
}

func TestCounterRejectsDecrease(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter accepted a negative add: %v", c.Value())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges_seconds", "", []float64{1})
	h.Observe(1) // exactly the bound: lower bucket
	h.Observe(1.0001)
	if h.counts[0].Load() != 1 || h.counts[1].Load() != 1 {
		t.Fatalf("bucket split wrong: %d/%d", h.counts[0].Load(), h.counts[1].Load())
	}
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "requests").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 1<<12)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "served_total 9") {
		t.Fatalf("body missing sample: %s", buf[:n])
	}
}

// TestConcurrentUpdatesAndRender hammers one registry from many goroutines —
// updates, re-registrations and renders interleaved — and checks the final
// totals. Run under -race this is the registry's concurrency contract.
func TestConcurrentUpdatesAndRender(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc_total", "")
			g := r.Gauge("conc_depth", "")
			h := r.Histogram("conc_seconds", "", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%2) * 0.9)
				// Re-registration races against rendering and updates.
				r.Counter("conc_total", "").Add(0)
			}
		}(w)
	}
	renderDone := make(chan struct{})
	go func() {
		defer close(renderDone)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-renderDone
	if got := r.Counter("conc_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("conc_depth", "").Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	if got := r.Histogram("conc_seconds", "", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default registry not a stable singleton")
	}
}

// TestProcessMetadata: every NewRegistry carries build identity and process
// start time so scrapes can tell processes apart.
func TestProcessMetadata(t *testing.T) {
	r := NewRegistry()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `aacc_build_info{gomaxprocs="`) ||
		!strings.Contains(out, `goversion="go`) {
		t.Fatalf("missing build info:\n%s", out)
	}
	if !strings.Contains(out, "aacc_process_start_time_seconds ") {
		t.Fatalf("missing process start time:\n%s", out)
	}
	start := r.Gauge("aacc_process_start_time_seconds", "").Value()
	now := float64(time.Now().UnixNano()) / 1e9
	if start <= 0 || start > now {
		t.Fatalf("implausible start time %v (now %v)", start, now)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("fn_depth", "computed", func() float64 { return v })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fn_depth 1.5") {
		t.Fatalf("func gauge not rendered:\n%s", sb.String())
	}
	v = 3
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fn_depth 3") {
		t.Fatalf("func gauge not re-evaluated at scrape:\n%s", sb.String())
	}
	// First registration wins: a second callback must not replace the first.
	r.GaugeFunc("fn_depth", "computed", func() float64 { return -1 })
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fn_depth 3") {
		t.Fatalf("second GaugeFunc replaced the first:\n%s", sb.String())
	}
	// A Set-style gauge under the same name is untouched by GaugeFunc.
	r.Gauge("mixed_depth", "").Set(7)
	r.GaugeFunc("mixed_depth", "", func() float64 { return -1 })
	if got := r.Gauge("mixed_depth", "").Value(); got != 7 {
		t.Fatalf("GaugeFunc clobbered a Set gauge: %v", got)
	}
}

// TestConcurrentRegistrationAndScrape registers brand-new families and
// label sets while scrapes run — distinct from TestConcurrentUpdatesAndRender,
// which re-registers existing instruments. Under -race this pins that
// registration and exposition can interleave freely.
func TestConcurrentRegistrationAndScrape(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch i % 3 {
				case 0:
					r.Counter(fmt.Sprintf("reg_c%d_total", w), "c", L("i", strconv.Itoa(i))).Inc()
				case 1:
					r.Gauge(fmt.Sprintf("reg_g%d", w), "g", L("i", strconv.Itoa(i))).Set(float64(i))
				default:
					r.Histogram(fmt.Sprintf("reg_h%d_seconds", w), "h", []float64{0.5}, L("i", strconv.Itoa(i))).Observe(0.1)
				}
			}
		}(w)
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-scrapeDone
	// Every registration must have landed exactly once.
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i += 3 {
			if got := r.Counter(fmt.Sprintf("reg_c%d_total", w), "c", L("i", strconv.Itoa(i))).Value(); got != 1 {
				t.Fatalf("counter w=%d i=%d = %v, want 1", w, i, got)
			}
		}
	}
}

// TestHistogramBucketConflict pins the documented first-registration-wins
// bucket semantics: repeated Histogram() calls with conflicting buckets
// reuse the family's original layout, and all observations land in one
// shared child.
func TestHistogramBucketConflict(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("conflict_seconds", "h", []float64{1, 10})
	h2 := r.Histogram("conflict_seconds", "h", []float64{0.25, 0.5, 2, 4, 8}) // conflicting layout
	if h1 != h2 {
		t.Fatal("conflicting buckets produced a second child")
	}
	if len(h2.upper) != 2 || h2.upper[0] != 1 || h2.upper[1] != 10 {
		t.Fatalf("buckets not fixed by first registration: %v", h2.upper)
	}
	h2.Observe(5)
	if h1.counts[1].Load() != 1 {
		t.Fatalf("observation via the second handle missed the shared buckets: %v", h1.counts[1].Load())
	}
	// A new label set under the same family also inherits the original
	// layout, even when registered with different buckets.
	h3 := r.Histogram("conflict_seconds", "h", []float64{100}, L("side", "b"))
	if len(h3.upper) != 2 || h3.upper[0] != 1 {
		t.Fatalf("new child ignored family buckets: %v", h3.upper)
	}
	// Unsorted and +Inf-bearing layouts are canonicalized on first
	// registration.
	h4 := r.Histogram("canon_seconds", "h", []float64{5, math.Inf(1), 1})
	if len(h4.upper) != 2 || h4.upper[0] != 1 || h4.upper[1] != 5 {
		t.Fatalf("bucket canonicalization wrong: %v", h4.upper)
	}
}
