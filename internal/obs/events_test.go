package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestRecorderRingSemantics(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 6; i++ {
		r.Record("core", "k", uint64(i), fmt.Sprintf("e%d", i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest first, with the first two overwritten.
	for i, ev := range evs {
		wantSeq := uint64(i + 3)
		if ev.Seq != wantSeq || ev.Trace != wantSeq {
			t.Fatalf("event %d: seq=%d trace=%d, want %d", i, ev.Seq, ev.Trace, wantSeq)
		}
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d, want 6", r.Total())
	}
	tail := r.Tail(2)
	if len(tail) != 2 || tail[0].Seq != 5 || tail[1].Seq != 6 {
		t.Fatalf("tail(2) wrong: %+v", tail)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record("core", "k", 0, "ignored")
	if r.Events() != nil || r.Tail(3) != nil || r.Total() != 0 {
		t.Fatal("nil recorder reported state")
	}
	var reg *Registry
	// The chained nil-safe form used at call sites.
	reg.Events().Record("core", "k", 0, "ignored")
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record("t", "k", uint64(w), "x")
				if i%100 == 0 {
					r.Tail(8)
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != workers*per {
		t.Fatalf("total = %d, want %d", r.Total(), workers*per)
	}
	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestRegistryCarriesRecorder(t *testing.T) {
	reg := NewRegistry()
	if reg.Events() == nil {
		t.Fatal("NewRegistry has no recorder")
	}
	reg.Events().Record("session", "degraded", 42, "exchange: boom")
	evs := reg.Events().Events()
	if len(evs) != 1 || evs[0].Kind != "degraded" || evs[0].Trace != 42 {
		t.Fatalf("recorded event wrong: %+v", evs)
	}
}

func TestEventsHandler(t *testing.T) {
	rec := NewRecorder(8)
	rec.Record("coordinator", "worker-lost", 7, "worker 0: read: EOF")
	srv := httptest.NewServer(EventsHandler(rec))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var evs []Event
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != "worker-lost" || evs[0].Trace != 7 || evs[0].Component != "coordinator" {
		t.Fatalf("decoded events wrong: %+v", evs)
	}

	// Nil recorder: an empty JSON array, not null.
	srv2 := httptest.NewServer(EventsHandler(nil))
	defer srv2.Close()
	resp2, err := srv2.Client().Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var evs2 []Event
	if err := json.NewDecoder(resp2.Body).Decode(&evs2); err != nil {
		t.Fatal(err)
	}
	if evs2 == nil || len(evs2) != 0 {
		t.Fatalf("nil recorder served %v", evs2)
	}
}
