// Package kcore implements k-core decomposition (Batagelj–Zaveršnik bucket
// peeling): coreness per vertex, the degeneracy of the graph, and a
// degeneracy ordering. Coreness is a standard SNA cohesion measure and the
// degeneracy ordering drives the maximal-clique enumerator in
// internal/clique (the anytime-anywhere methodology's other instantiation).
package kcore

import (
	"aacc/internal/graph"
	"aacc/internal/pqueue"
)

// Result of a k-core decomposition.
type Result struct {
	// Coreness[v] is the largest k such that v belongs to the k-core
	// (0 for dead or isolated vertices).
	Coreness []int
	// Degeneracy is the maximum coreness.
	Degeneracy int
	// Order is a degeneracy ordering of the live vertices: each vertex has
	// at most Degeneracy neighbours later in the order.
	Order []graph.ID
}

// Decompose computes the k-core decomposition of g by min-degree peeling
// (O((V+E) log V) with the indexed heap; ties broken by vertex ID so the
// degeneracy ordering is deterministic).
func Decompose(g *graph.Graph) Result {
	n := g.NumIDs()
	res := Result{Coreness: make([]int, n)}
	live := g.Vertices()
	if len(live) == 0 {
		return res
	}
	deg := make([]int64, n)
	h := pqueue.New(n)
	for _, v := range live {
		deg[v] = int64(g.Degree(v))
		// Priority packs (degree, id) so equal degrees pop in ID order.
		h.Push(v, deg[v]<<32|int64(v))
	}
	removed := make([]bool, n)
	res.Order = make([]graph.ID, 0, len(live))
	k := 0
	for h.Len() > 0 {
		v, pr := h.Pop()
		d := int(pr >> 32)
		if d > k {
			k = d
		}
		res.Coreness[v] = k
		res.Order = append(res.Order, v)
		removed[v] = true
		for _, e := range g.Neighbors(v) {
			u := e.To
			if removed[u] {
				continue
			}
			deg[u]--
			h.DecreaseKey(u, deg[u]<<32|int64(u))
		}
	}
	res.Degeneracy = k
	return res
}

// Core returns the vertices of the k-core (coreness >= k).
func (r Result) Core(k int) []graph.ID {
	var out []graph.ID
	for v, c := range r.Coreness {
		if c >= k {
			out = append(out, graph.ID(v))
		}
	}
	return out
}
