package kcore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aacc/internal/gen"
	"aacc/internal/graph"
)

func TestDecomposePath(t *testing.T) {
	r := Decompose(gen.Path(6))
	if r.Degeneracy != 1 {
		t.Fatalf("path degeneracy %d", r.Degeneracy)
	}
	for v := 0; v < 6; v++ {
		if r.Coreness[v] != 1 {
			t.Fatalf("path coreness[%d] = %d", v, r.Coreness[v])
		}
	}
}

func TestDecomposeClique(t *testing.T) {
	r := Decompose(gen.Complete(5))
	if r.Degeneracy != 4 {
		t.Fatalf("K5 degeneracy %d", r.Degeneracy)
	}
	for v := 0; v < 5; v++ {
		if r.Coreness[v] != 4 {
			t.Fatalf("K5 coreness[%d] = %d", v, r.Coreness[v])
		}
	}
}

func TestDecomposeCliqueWithTail(t *testing.T) {
	// K4 on {0..3} plus a pendant path 3-4-5.
	g := graph.New(6)
	for i := graph.ID(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	r := Decompose(g)
	if r.Degeneracy != 3 {
		t.Fatalf("degeneracy %d", r.Degeneracy)
	}
	for v := 0; v < 4; v++ {
		if r.Coreness[v] != 3 {
			t.Fatalf("clique coreness[%d] = %d", v, r.Coreness[v])
		}
	}
	if r.Coreness[4] != 1 || r.Coreness[5] != 1 {
		t.Fatalf("tail coreness %d, %d", r.Coreness[4], r.Coreness[5])
	}
	core3 := r.Core(3)
	if len(core3) != 4 {
		t.Fatalf("3-core size %d", len(core3))
	}
}

func TestDecomposeStarAndIsolated(t *testing.T) {
	g := gen.Star(5)
	g.AddVertex() // isolated
	r := Decompose(g)
	if r.Degeneracy != 1 {
		t.Fatalf("star degeneracy %d", r.Degeneracy)
	}
	if r.Coreness[5] != 0 {
		t.Fatalf("isolated coreness %d", r.Coreness[5])
	}
}

func TestDegeneracyOrderProperty(t *testing.T) {
	// In a degeneracy ordering, every vertex has at most Degeneracy
	// neighbours appearing later.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyiM(20+rng.Intn(100), 60+rng.Intn(200), rng.Int63(), gen.Config{})
		r := Decompose(g)
		pos := make([]int, g.NumIDs())
		for i, v := range r.Order {
			pos[v] = i
		}
		for _, v := range r.Order {
			later := 0
			for _, e := range g.Neighbors(v) {
				if pos[e.To] > pos[v] {
					later++
				}
			}
			if later > r.Degeneracy {
				return false
			}
		}
		// Coreness sanity: the k-core is non-empty for k = degeneracy.
		return len(r.Core(r.Degeneracy)) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(15))}); err != nil {
		t.Fatal(err)
	}
}

func TestCorenessUpperBoundedByDegree(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 4, gen.Config{})
	r := Decompose(g)
	for _, v := range g.Vertices() {
		if r.Coreness[v] > g.Degree(v) {
			t.Fatalf("coreness %d above degree %d at %d", r.Coreness[v], g.Degree(v), v)
		}
		if r.Coreness[v] < 1 {
			t.Fatalf("connected vertex %d has coreness %d", v, r.Coreness[v])
		}
	}
}

func TestDecomposeEmpty(t *testing.T) {
	r := Decompose(graph.New(0))
	if r.Degeneracy != 0 || len(r.Order) != 0 {
		t.Fatal("empty graph mishandled")
	}
}
