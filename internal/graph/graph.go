// Package graph provides a mutable, weighted, undirected graph used as the
// substrate for all anytime-anywhere closeness centrality computations.
//
// Vertices are dense int32 identifiers 0..N-1. Dynamic vertex additions
// append new identifiers; vertex deletions tombstone an identifier without
// renumbering, so identifiers remain stable across a dynamic analysis (the
// distance-vector store in internal/dv relies on this).
//
// All edges are undirected and carry a positive int32 weight. Parallel edges
// are not stored: adding an edge that already exists updates its weight.
package graph

import (
	"fmt"
	"sort"
)

// ID is a vertex identifier. Identifiers are dense and stable: they are
// assigned consecutively by AddVertex and never reused after RemoveVertex.
type ID = int32

// Edge is one directed half of an undirected edge.
type Edge struct {
	To ID
	W  int32
}

// EdgeTriple names a full undirected edge, used in change sets and I/O.
type EdgeTriple struct {
	U, V ID
	W    int32
}

// Graph is a mutable weighted undirected graph.
//
// The zero value is an empty graph ready for use, but New or NewWithCapacity
// should be preferred so adjacency storage is sized up front.
type Graph struct {
	adj     [][]Edge
	removed []bool
	m       int // number of live undirected edges
	dead    int // number of tombstoned vertices
}

// New returns an empty graph with n live vertices (0..n-1) and no edges.
func New(n int) *Graph {
	g := &Graph{
		adj:     make([][]Edge, n),
		removed: make([]bool, n),
	}
	return g
}

// NewWithCapacity returns an empty graph with n live vertices whose vertex
// storage has room for cap vertices before reallocating. It is used by
// dynamic workloads that know how many additions are coming.
func NewWithCapacity(n, capacity int) *Graph {
	if capacity < n {
		capacity = n
	}
	return &Graph{
		adj:     make([][]Edge, n, capacity),
		removed: make([]bool, n, capacity),
	}
}

// NumIDs returns the size of the identifier space, including tombstoned
// vertices. Valid identifiers are 0..NumIDs()-1.
func (g *Graph) NumIDs() int { return len(g.adj) }

// NumVertices returns the number of live (non-removed) vertices.
func (g *Graph) NumVertices() int { return len(g.adj) - g.dead }

// NumEdges returns the number of live undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// Has reports whether v is a live vertex.
func (g *Graph) Has(v ID) bool {
	return v >= 0 && int(v) < len(g.adj) && !g.removed[v]
}

// AddVertex appends a new live vertex and returns its identifier.
func (g *Graph) AddVertex() ID {
	id := ID(len(g.adj))
	g.adj = append(g.adj, nil)
	g.removed = append(g.removed, false)
	return id
}

// AddVertices appends k new live vertices and returns the first identifier.
func (g *Graph) AddVertices(k int) ID {
	first := ID(len(g.adj))
	for i := 0; i < k; i++ {
		g.adj = append(g.adj, nil)
		g.removed = append(g.removed, false)
	}
	return first
}

// RemoveVertex tombstones v and removes all its incident edges. The
// identifier is never reused. It panics if v is not live.
func (g *Graph) RemoveVertex(v ID) {
	g.mustHave(v)
	for _, e := range g.adj[v] {
		g.dropHalf(e.To, v)
		g.m--
	}
	g.adj[v] = nil
	g.removed[v] = true
	g.dead++
}

// AddEdge inserts the undirected edge {u,v} with weight w, or updates the
// weight if the edge exists. Self-loops are rejected. It panics on dead or
// out-of-range endpoints or non-positive weights, which always indicate a
// caller bug in this codebase.
func (g *Graph) AddEdge(u, v ID, w int32) {
	g.mustHave(u)
	g.mustHave(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	if w <= 0 {
		panic(fmt.Sprintf("graph: non-positive weight %d on edge {%d,%d}", w, u, v))
	}
	if g.setHalf(u, v, w) {
		g.setHalf(v, u, w)
		return
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, W: w})
	g.adj[v] = append(g.adj[v], Edge{To: u, W: w})
	g.m++
}

// setHalf updates the weight of the half-edge u->v if present, reporting
// whether it was found.
func (g *Graph) setHalf(u, v ID, w int32) bool {
	for i := range g.adj[u] {
		if g.adj[u][i].To == v {
			g.adj[u][i].W = w
			return true
		}
	}
	return false
}

// RemoveEdge deletes the undirected edge {u,v}, reporting whether it existed.
func (g *Graph) RemoveEdge(u, v ID) bool {
	if !g.Has(u) || !g.Has(v) {
		return false
	}
	if !g.dropHalf(u, v) {
		return false
	}
	g.dropHalf(v, u)
	g.m--
	return true
}

func (g *Graph) dropHalf(u, v ID) bool {
	a := g.adj[u]
	for i := range a {
		if a[i].To == v {
			a[i] = a[len(a)-1]
			g.adj[u] = a[:len(a)-1]
			return true
		}
	}
	return false
}

// HasEdge reports whether the undirected edge {u,v} is present.
func (g *Graph) HasEdge(u, v ID) bool {
	if !g.Has(u) || !g.Has(v) {
		return false
	}
	for _, e := range g.adj[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// Weight returns the weight of edge {u,v} and whether it exists.
func (g *Graph) Weight(u, v ID) (int32, bool) {
	if !g.Has(u) || !g.Has(v) {
		return 0, false
	}
	for _, e := range g.adj[u] {
		if e.To == v {
			return e.W, true
		}
	}
	return 0, false
}

// Degree returns the number of live edges incident to v.
func (g *Graph) Degree(v ID) int {
	g.mustHave(v)
	return len(g.adj[v])
}

// Neighbors returns the adjacency list of v. The returned slice is owned by
// the graph and must not be modified or retained across mutations.
func (g *Graph) Neighbors(v ID) []Edge {
	g.mustHave(v)
	return g.adj[v]
}

// Vertices returns the identifiers of all live vertices in ascending order.
func (g *Graph) Vertices() []ID {
	out := make([]ID, 0, g.NumVertices())
	for v := range g.adj {
		if !g.removed[v] {
			out = append(out, ID(v))
		}
	}
	return out
}

// Edges returns every live undirected edge exactly once (U < V), sorted.
func (g *Graph) Edges() []EdgeTriple {
	out := make([]EdgeTriple, 0, g.m)
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if ID(u) < e.To {
				out = append(out, EdgeTriple{U: ID(u), V: e.To, W: e.W})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:     make([][]Edge, len(g.adj)),
		removed: make([]bool, len(g.removed)),
		m:       g.m,
		dead:    g.dead,
	}
	copy(c.removed, g.removed)
	for v := range g.adj {
		if len(g.adj[v]) > 0 {
			c.adj[v] = append([]Edge(nil), g.adj[v]...)
		}
	}
	return c
}

// TotalWeight returns the sum of all live edge weights.
func (g *Graph) TotalWeight() int64 {
	var s int64
	for u := range g.adj {
		for _, e := range g.adj[u] {
			s += int64(e.W)
		}
	}
	return s / 2
}

func (g *Graph) mustHave(v ID) {
	if v < 0 || int(v) >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, len(g.adj)))
	}
	if g.removed[v] {
		panic(fmt.Sprintf("graph: vertex %d was removed", v))
	}
}

// InducedSubgraph returns the subgraph induced by keep, along with a mapping
// from new local identifiers to the original identifiers. Vertices in keep
// must be live and distinct.
func (g *Graph) InducedSubgraph(keep []ID) (*Graph, []ID) {
	local := make(map[ID]ID, len(keep))
	toGlobal := make([]ID, len(keep))
	for i, v := range keep {
		g.mustHave(v)
		local[v] = ID(i)
		toGlobal[i] = v
	}
	sub := New(len(keep))
	for i, v := range keep {
		for _, e := range g.adj[v] {
			if j, ok := local[e.To]; ok && ID(i) < j {
				sub.AddEdge(ID(i), j, e.W)
			}
		}
	}
	return sub, toGlobal
}

// ConnectedComponents returns the live vertices grouped into connected
// components, largest first.
func (g *Graph) ConnectedComponents() [][]ID {
	seen := make([]bool, len(g.adj))
	var comps [][]ID
	var stack []ID
	for start := range g.adj {
		if g.removed[start] || seen[start] {
			continue
		}
		var comp []ID
		stack = append(stack[:0], ID(start))
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, e := range g.adj[v] {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// IsConnected reports whether all live vertices are in one component.
func (g *Graph) IsConnected() bool {
	if g.NumVertices() <= 1 {
		return true
	}
	comps := g.ConnectedComponents()
	return len(comps) == 1
}

// Validate checks internal invariants (adjacency symmetry, weight agreement,
// no self-loops, no edges to dead vertices, edge count) and returns an error
// describing the first violation. It exists for tests and costs O(V+E·deg).
func (g *Graph) Validate() error {
	count := 0
	for u := range g.adj {
		if g.removed[u] && len(g.adj[u]) != 0 {
			return fmt.Errorf("removed vertex %d has %d edges", u, len(g.adj[u]))
		}
		seen := make(map[ID]bool, len(g.adj[u]))
		for _, e := range g.adj[u] {
			if e.To == ID(u) {
				return fmt.Errorf("self-loop on %d", u)
			}
			if seen[e.To] {
				return fmt.Errorf("parallel edge {%d,%d}", u, e.To)
			}
			seen[e.To] = true
			if int(e.To) >= len(g.adj) || g.removed[e.To] {
				return fmt.Errorf("edge {%d,%d} points to dead or invalid vertex", u, e.To)
			}
			w, ok := g.Weight(e.To, ID(u))
			if !ok {
				return fmt.Errorf("edge {%d,%d} missing reverse half", u, e.To)
			}
			if w != e.W {
				return fmt.Errorf("edge {%d,%d} weight mismatch %d vs %d", u, e.To, e.W, w)
			}
			if e.W <= 0 {
				return fmt.Errorf("edge {%d,%d} non-positive weight %d", u, e.To, e.W)
			}
			count++
		}
	}
	if count != 2*g.m {
		return fmt.Errorf("edge count mismatch: counted %d halves, recorded %d edges", count, g.m)
	}
	return nil
}
