package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// METIS graph-file support. The paper partitions with ParMETIS/METIS, whose
// native format is the de-facto interchange format of the partitioning
// community: a header line "n m [fmt]" followed by one line per vertex
// (1-based) listing its neighbours, with edge weights interleaved when fmt
// has the 1-bit set ("1" or "001"). Comment lines start with '%'.

// WriteMETIS writes g in METIS format with edge weights (fmt 001). Removed
// vertices are written as isolated lines so indices stay stable.
func WriteMETIS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d 001\n", g.NumIDs(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumIDs(); v++ {
		if g.Has(ID(v)) {
			first := true
			for _, e := range g.Neighbors(ID(v)) {
				if !first {
					if err := bw.WriteByte(' '); err != nil {
						return err
					}
				}
				first = false
				if _, err := fmt.Fprintf(bw, "%d %d", e.To+1, e.W); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMETIS parses the METIS graph format (fmt 0, 1 or 001 variants: edge
// weights on or off; vertex weights are not supported and rejected).
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *Graph
	edgeWeights := false
	declared := 0
	vertex := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(text, "%") {
			continue
		}
		if g == nil {
			f := strings.Fields(text)
			if len(f) < 2 || len(f) > 3 {
				return nil, fmt.Errorf("graph: metis line %d: malformed header %q", line, text)
			}
			n, err := strconv.Atoi(f[0])
			if err != nil {
				return nil, fmt.Errorf("graph: metis line %d: %v", line, err)
			}
			m, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("graph: metis line %d: %v", line, err)
			}
			declared = m
			if len(f) == 3 {
				switch strings.TrimLeft(f[2], "0") {
				case "":
					// fmt 0/00/000: plain
				case "1":
					edgeWeights = true
				default:
					return nil, fmt.Errorf("graph: metis fmt %q not supported (vertex weights)", f[2])
				}
			}
			g = New(n)
			continue
		}
		if vertex >= g.NumIDs() {
			if text == "" {
				continue
			}
			return nil, fmt.Errorf("graph: metis line %d: more vertex lines than declared", line)
		}
		f := strings.Fields(text)
		step := 1
		if edgeWeights {
			step = 2
		}
		if len(f)%step != 0 {
			return nil, fmt.Errorf("graph: metis line %d: odd field count with edge weights", line)
		}
		for i := 0; i < len(f); i += step {
			u, err := strconv.Atoi(f[i])
			if err != nil {
				return nil, fmt.Errorf("graph: metis line %d: %v", line, err)
			}
			if u < 1 || u > g.NumIDs() {
				return nil, fmt.Errorf("graph: metis line %d: neighbour %d out of range", line, u)
			}
			w := 1
			if edgeWeights {
				w, err = strconv.Atoi(f[i+1])
				if err != nil || w < 1 {
					return nil, fmt.Errorf("graph: metis line %d: bad edge weight %q", line, f[i+1])
				}
			}
			to := ID(u - 1)
			self := ID(vertex)
			if to == self {
				return nil, fmt.Errorf("graph: metis line %d: self-loop", line)
			}
			// Each edge appears in both endpoint lines; add once.
			if !g.HasEdge(self, to) {
				g.AddEdge(self, to, int32(w))
			}
		}
		vertex++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: metis input empty")
	}
	if g.NumEdges() != declared {
		return nil, fmt.Errorf("graph: metis declared %d edges, found %d", declared, g.NumEdges())
	}
	return g, nil
}
