package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestMETISRoundTrip(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	g.AddEdge(3, 4, 1)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumIDs() != 5 || h.NumEdges() != 3 {
		t.Fatalf("round trip counts: %d/%d", h.NumIDs(), h.NumEdges())
	}
	if w, ok := h.Weight(1, 2); !ok || w != 3 {
		t.Fatalf("weight lost: %d,%v", w, ok)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMETISPlainFormat(t *testing.T) {
	// Unweighted format: 4 vertices, 3 edges, no fmt field.
	in := "% a comment\n4 3\n2 3\n1\n1 4\n3\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(2, 3) {
		t.Fatal("edges wrong")
	}
	if w, _ := g.Weight(0, 1); w != 1 {
		t.Fatalf("default weight %d", w)
	}
}

func TestMETISErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"x y\n",
		"2 1 011\n2\n1\n",   // vertex weights unsupported
		"2 1\n3\n\n",        // neighbour out of range
		"2 1\n1\n2\n",       // self-loop (vertex 1 lists itself)
		"2 5\n2\n1\n",       // declared edge count wrong
		"2 1 1\n2\n1 1\n",   // odd fields with edge weights
		"1 0\n\n\nextra\n",  // more vertex lines than declared
		"2 1 1\n2 0\n1 0\n", // weight < 1
	} {
		if _, err := ReadMETIS(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestMETISRemovedVerticesStayIsolated(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.RemoveVertex(2)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Degree(2) != 0 {
		t.Fatal("removed vertex regained edges")
	}
	if !h.HasEdge(0, 1) {
		t.Fatal("edge lost")
	}
}
