package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as whitespace-separated "u v w" lines,
// one per undirected edge (u < v), preceded by a "# vertices N" header so
// isolated vertices round-trip.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d\n", g.NumIDs()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' other than the vertices header, and blank lines, are ignored.
// A missing weight column defaults to 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *Graph
	maxID := ID(-1)
	type edge struct {
		u, v ID
		w    int32
	}
	var edges []edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			var n int
			if _, err := fmt.Sscanf(text, "# vertices %d", &n); err == nil {
				g = New(n)
			}
			continue
		}
		f := strings.Fields(text)
		if len(f) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: need at least 2 fields, got %q", line, text)
		}
		u, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %v", line, err)
		}
		w := int64(1)
		if len(f) >= 3 {
			w, err = strconv.ParseInt(f[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: edge list line %d: %v", line, err)
			}
		}
		if u == v {
			return nil, fmt.Errorf("graph: edge list line %d: self-loop %d", line, u)
		}
		edges = append(edges, edge{u: ID(u), v: ID(v), w: int32(w)})
		if ID(u) > maxID {
			maxID = ID(u)
		}
		if ID(v) > maxID {
			maxID = ID(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		g = New(int(maxID) + 1)
	} else if int(maxID) >= g.NumIDs() {
		return nil, fmt.Errorf("graph: edge references vertex %d beyond declared count %d", maxID, g.NumIDs())
	}
	for _, e := range edges {
		g.AddEdge(e.u, e.v, e.w)
	}
	return g, nil
}

// WritePajek writes the graph in the Pajek .net format the paper's tooling
// used (1-based vertex numbers, "*Vertices n" then "*Edges" sections).
func WritePajek(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "*Vertices %d\n", g.NumIDs()); err != nil {
		return err
	}
	for v := 0; v < g.NumIDs(); v++ {
		if _, err := fmt.Fprintf(bw, "%d \"v%d\"\n", v+1, v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "*Edges"); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U+1, e.V+1, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPajek parses the subset of the Pajek .net format written by WritePajek:
// a *Vertices section (labels ignored) followed by *Edges or *Arcs lines.
// Arcs are treated as undirected edges, matching how the paper's experiments
// used undirected scale-free graphs.
func ReadPajek(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *Graph
	inEdges := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		lower := strings.ToLower(text)
		switch {
		case strings.HasPrefix(lower, "*vertices"):
			f := strings.Fields(text)
			if len(f) < 2 {
				return nil, fmt.Errorf("graph: pajek line %d: malformed *Vertices", line)
			}
			n, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("graph: pajek line %d: %v", line, err)
			}
			g = New(n)
			inEdges = false
		case strings.HasPrefix(lower, "*edges") || strings.HasPrefix(lower, "*arcs"):
			inEdges = true
		case strings.HasPrefix(lower, "*"):
			inEdges = false
		case inEdges:
			if g == nil {
				return nil, fmt.Errorf("graph: pajek line %d: edges before *Vertices", line)
			}
			f := strings.Fields(text)
			if len(f) < 2 {
				return nil, fmt.Errorf("graph: pajek line %d: malformed edge %q", line, text)
			}
			u, err := strconv.Atoi(f[0])
			if err != nil {
				return nil, fmt.Errorf("graph: pajek line %d: %v", line, err)
			}
			v, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("graph: pajek line %d: %v", line, err)
			}
			w := 1
			if len(f) >= 3 {
				// Pajek permits fractional weights; the engine is integral.
				fw, err := strconv.ParseFloat(f[2], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: pajek line %d: %v", line, err)
				}
				w = int(fw)
				if w < 1 {
					w = 1
				}
			}
			if u != v && !g.HasEdge(ID(u-1), ID(v-1)) {
				g.AddEdge(ID(u-1), ID(v-1), int32(w))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: pajek input had no *Vertices section")
	}
	return g, nil
}
