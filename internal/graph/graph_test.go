package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.NumVertices() != 5 || g.NumEdges() != 0 || g.NumIDs() != 5 {
		t.Fatalf("unexpected counts: %d vertices, %d edges, %d ids", g.NumVertices(), g.NumEdges(), g.NumIDs())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 5)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} missing in one direction")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge {0,2}")
	}
	if w, ok := g.Weight(1, 2); !ok || w != 5 {
		t.Fatalf("weight(1,2) = %d,%v", w, ok)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edge count %d, want 2", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeUpdatesWeight(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 0, 9) // same undirected edge, new weight
	if g.NumEdges() != 1 {
		t.Fatalf("edge count %d, want 1", g.NumEdges())
	}
	if w, _ := g.Weight(0, 1); w != 9 {
		t.Fatalf("weight %d, want 9", w)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgePanicsOnSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	New(2).AddEdge(1, 1, 1)
}

func TestAddEdgePanicsOnBadWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on weight 0")
		}
	}()
	New(2).AddEdge(0, 1, 0)
}

func TestRemoveEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge returned false for existing edge")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge returned true for missing edge")
	}
	if g.NumEdges() != 1 || g.HasEdge(0, 1) {
		t.Fatal("edge {0,1} not fully removed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddVertex(t *testing.T) {
	g := New(2)
	v := g.AddVertex()
	if v != 2 || g.NumVertices() != 3 {
		t.Fatalf("AddVertex -> %d, n=%d", v, g.NumVertices())
	}
	first := g.AddVertices(3)
	if first != 3 || g.NumVertices() != 6 {
		t.Fatalf("AddVertices -> %d, n=%d", first, g.NumVertices())
	}
}

func TestRemoveVertex(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	g.RemoveVertex(1)
	if g.Has(1) {
		t.Fatal("vertex 1 still live")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("edges left: %d", g.NumEdges())
	}
	if g.NumVertices() != 4 || g.NumIDs() != 5 {
		t.Fatalf("counts after removal: %d live, %d ids", g.NumVertices(), g.NumIDs())
	}
	// ID is never reused.
	if v := g.AddVertex(); v != 5 {
		t.Fatalf("new vertex got recycled id %d", v)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	if g.Degree(0) != 3 || g.Degree(3) != 1 {
		t.Fatalf("degrees: %d, %d", g.Degree(0), g.Degree(3))
	}
	seen := map[ID]bool{}
	for _, e := range g.Neighbors(0) {
		seen[e.To] = true
	}
	if len(seen) != 3 || !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("neighbors of 0: %v", seen)
	}
}

func TestEdgesSortedUnique(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 1, 7)
	g.AddEdge(0, 3, 2)
	g.AddEdge(0, 1, 5)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("got %d edges", len(es))
	}
	for i, e := range es {
		if e.U >= e.V {
			t.Fatalf("edge %d not canonical: %+v", i, e)
		}
		if i > 0 && (es[i-1].U > e.U || (es[i-1].U == e.U && es[i-1].V > e.V)) {
			t.Fatalf("edges not sorted at %d", i)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	c := g.Clone()
	c.AddEdge(1, 2, 1)
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) || g.HasEdge(1, 2) {
		t.Fatal("clone mutations leaked into original")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 4)
	g.AddEdge(3, 4, 5)
	sub, toGlobal := g.InducedSubgraph([]ID{1, 2, 4})
	if sub.NumVertices() != 3 {
		t.Fatalf("sub has %d vertices", sub.NumVertices())
	}
	if sub.NumEdges() != 1 { // only {1,2} survives
		t.Fatalf("sub has %d edges", sub.NumEdges())
	}
	if toGlobal[0] != 1 || toGlobal[1] != 2 || toGlobal[2] != 4 {
		t.Fatalf("mapping %v", toGlobal)
	}
	if w, ok := sub.Weight(0, 1); !ok || w != 3 {
		t.Fatalf("sub weight %d,%v", w, ok)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comps := g.ConnectedComponents()
	if len(comps) != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("got %d components", len(comps))
	}
	if len(comps[0]) != 3 {
		t.Fatalf("largest component has %d", len(comps[0]))
	}
	if g.IsConnected() {
		t.Fatal("claimed connected")
	}
	g.AddEdge(2, 3, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 6, 1)
	if !g.IsConnected() {
		t.Fatal("claimed disconnected")
	}
}

func TestTotalWeight(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 2, 6)
	if tw := g.TotalWeight(); tw != 10 {
		t.Fatalf("total weight %d", tw)
	}
}

func TestVerticesSkipsRemoved(t *testing.T) {
	g := New(4)
	g.RemoveVertex(2)
	vs := g.Vertices()
	if len(vs) != 3 {
		t.Fatalf("got %d vertices", len(vs))
	}
	for _, v := range vs {
		if v == 2 {
			t.Fatal("removed vertex listed")
		}
	}
}

// Property: a random sequence of mutations always leaves the graph valid,
// with edge counts consistent under Validate.
func TestPropertyRandomMutationsStayValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(1 + rng.Intn(20))
		for i := 0; i < 200; i++ {
			switch rng.Intn(5) {
			case 0:
				g.AddVertex()
			case 1:
				n := g.NumIDs()
				u, v := ID(rng.Intn(n)), ID(rng.Intn(n))
				if u != v && g.Has(u) && g.Has(v) {
					g.AddEdge(u, v, int32(1+rng.Intn(9)))
				}
			case 2:
				n := g.NumIDs()
				g.RemoveEdge(ID(rng.Intn(n)), ID(rng.Intn(n)))
			case 3:
				if vs := g.Vertices(); len(vs) > 1 {
					g.RemoveVertex(vs[rng.Intn(len(vs))])
				}
			case 4:
				c := g.Clone()
				if c.NumEdges() != g.NumEdges() || c.NumVertices() != g.NumVertices() {
					return false
				}
			}
			if err := g.Validate(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Edges() returns exactly NumEdges() canonical pairs and
// round-trips through a fresh graph.
func TestPropertyEdgesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := ID(rng.Intn(n)), ID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v, int32(1+rng.Intn(5)))
			}
		}
		es := g.Edges()
		if len(es) != g.NumEdges() {
			return false
		}
		h := New(n)
		for _, e := range es {
			h.AddEdge(e.U, e.V, e.W)
		}
		es2 := h.Edges()
		if len(es2) != len(es) {
			return false
		}
		for i := range es {
			if es[i] != es2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
