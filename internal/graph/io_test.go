package graph

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Graph {
	g := New(5)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	g.AddEdge(3, 4, 1)
	return g
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumIDs() != g.NumIDs() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
			h.NumIDs(), h.NumEdges(), g.NumIDs(), g.NumEdges())
	}
	if w, ok := h.Weight(1, 2); !ok || w != 3 {
		t.Fatalf("weight(1,2) = %d,%v", w, ok)
	}
}

func TestEdgeListDefaultWeight(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.Weight(0, 1); w != 1 {
		t.Fatalf("default weight %d", w)
	}
	if g.NumIDs() != 3 {
		t.Fatalf("inferred %d ids", g.NumIDs())
	}
}

func TestEdgeListRejectsSelfLoop(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("1 1 4\n")); err == nil {
		t.Fatal("expected error on self-loop")
	}
}

func TestEdgeListRejectsOutOfRange(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("# vertices 2\n0 5 1\n")); err == nil {
		t.Fatal("expected error on out-of-range vertex")
	}
}

func TestEdgeListRejectsGarbage(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("zero one\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestPajekRoundTrip(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WritePajek(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadPajek(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumIDs() != g.NumIDs() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed counts")
	}
	if w, ok := h.Weight(0, 1); !ok || w != 2 {
		t.Fatalf("weight(0,1) = %d,%v", w, ok)
	}
}

func TestPajekParsesArcsAsEdges(t *testing.T) {
	in := "*Vertices 3\n1 \"a\"\n2 \"b\"\n3 \"c\"\n*Arcs\n1 2 2.5\n3 2\n"
	g, err := ReadPajek(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 1) {
		t.Fatal("arcs not parsed as undirected edges")
	}
	if w, _ := g.Weight(0, 1); w != 2 { // 2.5 truncated
		t.Fatalf("fractional weight handled as %d", w)
	}
}

func TestPajekRequiresVertices(t *testing.T) {
	if _, err := ReadPajek(strings.NewReader("*Edges\n1 2\n")); err == nil {
		t.Fatal("expected error without *Vertices")
	}
}
