package graph

// View is the read-only face of a Graph. Everything that inspects a graph —
// metrics, oracles, experiments, report formatting — should accept a View,
// so that holding one (e.g. from core.Engine.Graph()) cannot desynchronise a
// running analysis: the mutating methods (AddEdge, RemoveVertex, ...) are
// simply not reachable through this type. Code that needs a mutable graph
// derived from a View calls Clone and owns the copy.
//
// *Graph implements View; the compile-time check below pins the contract.
type View interface {
	// NumIDs returns the size of the identifier space, including
	// tombstoned vertices. Valid identifiers are 0..NumIDs()-1.
	NumIDs() int
	// NumVertices returns the number of live (non-removed) vertices.
	NumVertices() int
	// NumEdges returns the number of live undirected edges.
	NumEdges() int
	// Has reports whether v is a live vertex.
	Has(v ID) bool
	// HasEdge reports whether the undirected edge {u,v} is present.
	HasEdge(u, v ID) bool
	// Weight returns the weight of edge {u,v} and whether it exists.
	Weight(u, v ID) (int32, bool)
	// Degree returns the number of live edges incident to v.
	Degree(v ID) int
	// Neighbors returns the adjacency list of v. The returned slice is
	// owned by the graph and must not be modified or retained across
	// mutations.
	Neighbors(v ID) []Edge
	// Vertices returns the identifiers of all live vertices in ascending
	// order.
	Vertices() []ID
	// Edges returns every live undirected edge exactly once (U < V).
	Edges() []EdgeTriple
	// TotalWeight returns the sum of all live edge weights.
	TotalWeight() int64
	// ConnectedComponents groups live vertices into components, largest
	// first.
	ConnectedComponents() [][]ID
	// IsConnected reports whether all live vertices are in one component.
	IsConnected() bool
	// InducedSubgraph returns a new graph induced by keep plus the
	// local-to-original ID mapping. The result is caller-owned.
	InducedSubgraph(keep []ID) (*Graph, []ID)
	// Clone returns a deep, caller-owned mutable copy.
	Clone() *Graph
	// Validate checks internal invariants (tests; O(V+E·deg)).
	Validate() error
}

var _ View = (*Graph)(nil)

// Materialize returns the concrete *Graph behind v when v is one (the common
// case — no copy, read-only use only), or a deep copy otherwise. Read-only
// kernels that need concrete adjacency traversal speed (sssp, centrality)
// use it to accept Views without paying interface dispatch per edge.
func Materialize(v View) *Graph {
	if g, ok := v.(*Graph); ok {
		return g
	}
	return v.Clone()
}
