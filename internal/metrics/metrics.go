// Package metrics computes the load-balance and cut-edge statistics the
// paper's evaluation reports, and formats experiment tables.
package metrics

import (
	"fmt"
	"io"
	"strings"

	"aacc/internal/graph"
)

// Load summarises per-processor computation and communication load.
type Load struct {
	// Vertices[p] is the number of vertices owned by processor p.
	Vertices []int
	// CutEdges[p] is the number of cut edges incident to processor p.
	CutEdges []int
	// TotalCut is the number of distinct cut edges.
	TotalCut int
	// VertexImbalance is max owned / ideal (1.0 = perfect).
	VertexImbalance float64
	// CutImbalance is max per-processor cut / mean per-processor cut.
	CutImbalance float64
}

// Measure computes Load for a graph and an ownership function (owner(v) < 0
// for dead vertices). Any read-only view works, including a live engine's
// Graph() between steps.
func Measure(g graph.View, p int, owner func(graph.ID) int) Load {
	l := Load{Vertices: make([]int, p), CutEdges: make([]int, p)}
	live := 0
	for _, v := range g.Vertices() {
		o := owner(v)
		if o < 0 || o >= p {
			continue
		}
		live++
		l.Vertices[o]++
		for _, e := range g.Neighbors(v) {
			oo := owner(e.To)
			if oo >= 0 && oo != o {
				l.CutEdges[o]++
				if v < e.To {
					l.TotalCut++
				}
			}
		}
	}
	if live > 0 {
		ideal := float64(live) / float64(p)
		maxV := 0
		for _, c := range l.Vertices {
			if c > maxV {
				maxV = c
			}
		}
		l.VertexImbalance = float64(maxV) / ideal
	}
	sum, maxC := 0, 0
	for _, c := range l.CutEdges {
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	if sum > 0 {
		l.CutImbalance = float64(maxC) / (float64(sum) / float64(p))
	}
	return l
}

// Table is a simple aligned-column experiment table mirroring the rows and
// series of one paper figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddFloats appends a row of a leading label plus %.4g-formatted values.
func (t *Table) AddFloats(label string, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.4g", v))
	}
	t.Rows = append(t.Rows, cells)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
		_ = i
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, c)
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
