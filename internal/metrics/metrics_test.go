package metrics

import (
	"bytes"
	"strings"
	"testing"

	"aacc/internal/gen"
	"aacc/internal/graph"
)

func TestMeasureBalanced(t *testing.T) {
	g := gen.Path(8) // 0-1-2-3-4-5-6-7
	owner := func(v graph.ID) int { return int(v) / 4 }
	l := Measure(g, 2, owner)
	if l.Vertices[0] != 4 || l.Vertices[1] != 4 {
		t.Fatalf("vertices %v", l.Vertices)
	}
	if l.TotalCut != 1 {
		t.Fatalf("total cut %d", l.TotalCut)
	}
	if l.CutEdges[0] != 1 || l.CutEdges[1] != 1 {
		t.Fatalf("per-proc cut %v", l.CutEdges)
	}
	if l.VertexImbalance != 1 {
		t.Fatalf("imbalance %.3f", l.VertexImbalance)
	}
	if l.CutImbalance != 1 {
		t.Fatalf("cut imbalance %.3f", l.CutImbalance)
	}
}

func TestMeasureSkewed(t *testing.T) {
	g := gen.Star(5) // center 0
	owner := func(v graph.ID) int {
		if v == 0 {
			return 0
		}
		return 1
	}
	l := Measure(g, 2, owner)
	if l.TotalCut != 4 {
		t.Fatalf("total cut %d", l.TotalCut)
	}
	if l.VertexImbalance != 1.6 { // 4 of 5 on proc 1
		t.Fatalf("imbalance %.3f", l.VertexImbalance)
	}
}

func TestMeasureSkipsDead(t *testing.T) {
	g := gen.Path(5)
	g.RemoveVertex(2)
	l := Measure(g, 2, func(v graph.ID) int {
		if v == 2 {
			return -1
		}
		return int(v) % 2
	})
	total := 0
	for _, c := range l.Vertices {
		total += c
	}
	if total != 4 {
		t.Fatalf("counted %d vertices", total)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Columns: []string{"name", "value"},
	}
	tab.AddRow("alpha", "1")
	tab.AddFloats("beta", 2.5, 3.25)
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## demo", "name", "value", "alpha", "beta", "2.5", "3.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableHandlesRaggedRows(t *testing.T) {
	tab := Table{Title: "ragged", Columns: []string{"a", "b"}}
	tab.AddRow("only-one")
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only-one") {
		t.Fatal("row lost")
	}
}
