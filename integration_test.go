package aacc

// End-to-end integration: one long-lived analysis lives through everything
// the system supports — streamed community arrivals, edge churn, a change-log
// replay, a processor crash, a checkpoint/restore onto a fresh cluster, a
// repartition — and at every quiescent point the distances equal the
// sequential oracle and the closeness ranking is exact.

import (
	"bytes"
	"strings"
	"testing"

	"aacc/internal/centrality"
	"aacc/internal/changelog"
	"aacc/internal/core"
	"aacc/internal/gen"
	"aacc/internal/graph"
	"aacc/internal/runtime"
	"aacc/internal/sssp"
	"aacc/internal/workload"
)

func assertOracle(t *testing.T, e *core.Engine, stage string) {
	t.Helper()
	want := sssp.APSP(e.Graph(), 0)
	got := e.Distances()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", stage, len(got), len(want))
	}
	for v, wrow := range want {
		grow := got[v]
		for u := range wrow {
			if grow[u] != wrow[u] {
				t.Fatalf("%s: d(%d,%d) = %d, want %d", stage, v, u, grow[u], wrow[u])
			}
		}
	}
}

func TestIntegrationFullLifecycle(t *testing.T) {
	add, err := workload.ExtractAddition(400, 60, 123, gen.Config{MaxWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.New(add.Base, core.Options{P: 8, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: initial convergence.
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	assertOracle(t, e, "initial")

	// Phase 2: streamed community arrivals (CutEdge-PS) with edge churn
	// interleaved, never waiting for convergence between waves.
	inc := workload.NewIncremental(add.Batch, 4)
	ps := &core.CutEdgePS{Seed: 123}
	wave := 0
	for inc.Remaining() > 0 {
		wave++
		e.Step()
		chunk := inc.Next()
		ids, err := e.ApplyVertexAdditions(chunk, ps)
		if err != nil {
			t.Fatal(err)
		}
		inc.NoteIDs(ids)
		if wave == 2 {
			adds := workload.RandomEdgeAdditions(e.Graph(), 10, 3, 77)
			if err := e.ApplyEdgeAdditions(adds); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	assertOracle(t, e, "after streamed arrivals")

	// Phase 3: a change-log replay (named vertices, weight change, delete).
	log := "@1\naddvertex hub\nattach hub 0 1\nattach hub 100 1\nattach hub 200 1\n@2\nsetweight 0 1 5\ndeledge 2 3\n"
	cl, err := changelog.Parse(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	rep := changelog.NewReplayer(cl, ps)
	if err := rep.ReplayAll(e); err != nil {
		t.Fatal(err)
	}
	assertOracle(t, e, "after change-log replay")
	hub, ok := rep.Resolve("hub")
	if !ok || !e.Graph().Has(hub) {
		t.Fatal("hub vertex missing after replay")
	}

	// Phase 4: processor crash and checkpoint-free recovery.
	if _, err := e.FailProcessor(3); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	assertOracle(t, e, "after failure recovery")

	// Phase 5: checkpoint, restore onto a fresh engine, keep going.
	var ckpt bytes.Buffer
	if err := e.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	restored, err := core.LoadCheckpoint(&ckpt, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Run(); err != nil {
		t.Fatal(err)
	}
	assertOracle(t, restored, "after restore")

	// Phase 6: the restored engine rebalances and stays exact.
	if _, err := restored.Repartition(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Run(); err != nil {
		t.Fatal(err)
	}
	assertOracle(t, restored, "after repartition")

	// Final: closeness ranking equals the oracle's and paths realise
	// distances.
	scores := restored.Scores()
	exact := centrality.FromDistances(sssp.APSP(restored.Graph(), 0),
		restored.Graph().Vertices(), restored.Graph().NumIDs())
	for _, v := range restored.Graph().Vertices() {
		d := scores.Classic[v] - exact.Classic[v]
		if d > 1e-12 || d < -1e-12 {
			t.Fatalf("closeness of %d: %g vs %g", v, scores.Classic[v], exact.Classic[v])
		}
	}
	top := centrality.TopK(scores, scores.Classic, 1)
	p, err := restored.Path(top[0], hub)
	if err != nil {
		t.Fatal(err)
	}
	if l, _ := restored.PathLength(p); l != restored.Distance(top[0], hub) {
		t.Fatal("path does not realise distance")
	}
}

// TestIntegrationWireLifecycle runs a condensed lifecycle over the real TCP
// wire: dynamics + convergence with serialised exchanges.
func TestIntegrationWireLifecycle(t *testing.T) {
	g := gen.BarabasiAlbert(200, 2, 321, gen.Config{MaxWeight: 2})
	e, err := core.New(g, core.Options{P: 6, Seed: 321, Runtime: runtime.WireTCP})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Step()
	batch := &core.VertexBatch{
		Count:    4,
		Internal: []core.BatchEdge{{A: 0, B: 1, W: 1}, {A: 2, B: 3, W: 1}},
		External: []core.AttachEdge{{New: 0, To: 10, W: 1}, {New: 2, To: 150, W: 2}},
	}
	if _, err := e.ApplyVertexAdditions(batch, &core.RoundRobinPS{}); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyEdgeDeletions([][2]graph.ID{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	assertOracle(t, e, "wire lifecycle")
}
