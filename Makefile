# Developer entry points. CI runs the same three checks as `make check`.

.PHONY: build vet test race check bench-baseline bench-cores clean

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

check: build vet race

# Emit BENCH_core.json from the root benchmark suite (bench_test.go).
# Override BENCHTIME for a stable baseline, e.g. `make bench-baseline BENCHTIME=2s`.
BENCHTIME ?= 1x
bench-baseline:
	sh scripts/bench_baseline.sh $(BENCHTIME)

# Cores-scaling series: the worker-pool sweeps (IA, install/relax, Figure 4)
# at 1/2/4/8 workers. Interpret against the num_cpu/gomaxprocs fields the
# baseline records — on a single-core host the curve is flat by construction.
bench-cores:
	go test -run '^$$' -bench 'BenchmarkIAParallel|BenchmarkInstallRelaxParallel|BenchmarkFig4Workers' -benchmem -benchtime $(BENCHTIME) .

clean:
	rm -f BENCH_core.json
