# Developer entry points. CI runs the same three checks as `make check`.

.PHONY: build vet test race check bench-baseline clean

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

check: build vet race

# Emit BENCH_core.json from the root benchmark suite (bench_test.go).
# Override BENCHTIME for a stable baseline, e.g. `make bench-baseline BENCHTIME=2s`.
BENCHTIME ?= 1x
bench-baseline:
	sh scripts/bench_baseline.sh $(BENCHTIME)

clean:
	rm -f BENCH_core.json
