// Socialstream: the scenario from the paper's introduction — an online
// community where new actors join continuously. Community-structured vertex
// batches (extracted with Louvain, as in the paper's experiments) stream
// into a running closeness analysis; after every injection the analysis
// keeps serving monotonically improving centrality estimates instead of
// restarting.
package main

import (
	"fmt"
	"log"

	"aacc/internal/centrality"
	"aacc/internal/core"
	"aacc/internal/gen"
	"aacc/internal/workload"
)

func main() {
	const (
		baseN = 1200 // initial community size
		joins = 240  // actors that will join over time
		waves = 6    // arrival waves
		procs = 8
	)
	add, err := workload.ExtractAddition(baseN, joins, 7, gen.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base network: %d actors, %d ties; %d newcomers arriving in %d waves\n",
		add.Base.NumVertices(), add.Base.NumEdges(), add.Batch.Count, waves)

	engine, err := core.New(add.Base, core.Options{P: procs, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := engine.Run(); err != nil {
		log.Fatal(err)
	}
	report(engine, "initial analysis")

	inc := workload.NewIncremental(add.Batch, waves)
	ps := &core.CutEdgePS{Seed: 7} // keep arriving communities co-located
	wave := 0
	for inc.Remaining() > 0 {
		wave++
		chunk := inc.Next()
		ids, err := engine.ApplyVertexAdditions(chunk, ps)
		if err != nil {
			log.Fatal(err)
		}
		inc.NoteIDs(ids)
		if _, err := engine.Run(); err != nil {
			log.Fatal(err)
		}
		report(engine, fmt.Sprintf("after wave %d (+%d actors)", wave, len(ids)))
	}

	st := engine.Stats()
	fmt.Printf("\ntotal: %d RC steps, %.1f MB exchanged, simulated parallel time %v\n",
		engine.StepCount(), float64(st.BytesSent)/(1<<20), st.SimTotal().Round(1e6))
	fmt.Println("a restart-based tool would have re-analysed the whole network after every wave")
}

func report(e *core.Engine, label string) {
	s := e.Scores()
	top := centrality.TopK(s, s.Classic, 3)
	fmt.Printf("%-28s n=%-5d top actors:", label, e.Graph().NumVertices())
	for _, v := range top {
		fmt.Printf("  %d (%.5f)", v, s.Classic[v])
	}
	fmt.Println()
}
