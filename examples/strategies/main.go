// Strategies: a large community-structured burst of new vertices hits a
// running analysis, handled three ways — RoundRobin-PS, CutEdge-PS and
// Repartition-S — reproducing the trade-off of the paper's Figures 5–7 on a
// single scenario: the cut-aware strategies keep the new communities
// co-located (fewer cut edges), while Repartition-S pays a migration bill to
// get the globally best partition.
package main

import (
	"fmt"
	"log"
	"os"

	"aacc/internal/core"
	"aacc/internal/gen"
	"aacc/internal/graph"
	"aacc/internal/metrics"
	"aacc/internal/partition"
	"aacc/internal/workload"
)

func main() {
	const (
		baseN = 1500
		burst = 300
		procs = 16
	)
	add, err := workload.ExtractAddition(baseN, burst, 11, gen.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("burst: %d vertices in %d communities, %d internal + %d attachment edges\n\n",
		add.Batch.Count, add.Communities, len(add.Batch.Internal), len(add.Batch.External))

	tab := metrics.Table{
		Title:   "one burst, three strategies",
		Columns: []string{"strategy", "sim-time", "new-cut-edges", "vertex-imbalance", "rc-steps"},
	}
	for _, name := range []string{"RoundRobin-PS", "CutEdge-PS", "Repartition-S"} {
		engine, err := core.New(add.Base.Clone(), core.Options{
			P: procs, Seed: 11, Partitioner: partition.Multilevel{Seed: 11},
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := engine.Run(); err != nil {
			log.Fatal(err)
		}
		cutBefore := engine.Assignment().CutEdges(engine.Graph())
		batch := &core.VertexBatch{
			Count:    add.Batch.Count,
			Internal: append([]core.BatchEdge(nil), add.Batch.Internal...),
			External: append([]core.AttachEdge(nil), add.Batch.External...),
		}
		switch name {
		case "RoundRobin-PS":
			_, err = engine.ApplyVertexAdditions(batch, &core.RoundRobinPS{})
		case "CutEdge-PS":
			_, err = engine.ApplyVertexAdditions(batch, &core.CutEdgePS{Seed: 11})
		case "Repartition-S":
			_, err = engine.Repartition(batch)
		}
		if err != nil {
			log.Fatal(err)
		}
		if _, err := engine.Run(); err != nil {
			log.Fatal(err)
		}
		load := metrics.Measure(engine.Graph(), procs, func(v graph.ID) int { return engine.Owner(v) })
		tab.AddRow(
			name,
			engine.Stats().SimTotal().Round(1e6).String(),
			fmt.Sprintf("%+d", engine.Assignment().CutEdges(engine.Graph())-cutBefore),
			fmt.Sprintf("%.3f", load.VertexImbalance),
			fmt.Sprintf("%d", engine.StepCount()),
		)
	}
	if err := tab.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("RoundRobin-PS scatters each community across all processors;")
	fmt.Println("CutEdge-PS partitions the new community graph first; Repartition-S")
	fmt.Println("re-partitions everything and migrates partial results.")
}
