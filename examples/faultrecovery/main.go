// Faultrecovery: the paper's future-work scenario — fault tolerance for
// cloud deployments. A processor crashes mid-analysis and rebuilds its
// distance vectors from the boundary snapshots its neighbours still hold
// (checkpoint-free recovery); separately, the whole analysis survives a full
// cluster loss through an anytime checkpoint, resuming with every partial
// result intact.
package main

import (
	"bytes"
	"fmt"
	"log"

	"aacc/internal/core"
	"aacc/internal/gen"
)

func main() {
	const (
		n     = 1200
		procs = 12
	)
	g := gen.BarabasiAlbert(n, 2, 21, gen.Config{MaxWeight: 3})
	engine, err := core.New(g, core.Options{P: procs, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	// Make some progress, then lose a processor.
	engine.Step()
	engine.Step()
	engine.Step()
	fmt.Printf("analysis at RC step %d... processor 5 crashes\n", engine.StepCount())
	rec, err := engine.FailProcessor(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d rows lost, %d rebuilt from neighbours' snapshots, %d entries salvaged\n",
		rec.RowsLost, rec.RowsFromSnapshots, rec.EntriesRecovered)
	if _, err := engine.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-converged at RC step %d; results are exact again\n\n", engine.StepCount())

	// Checkpoint the anytime state, then simulate total cluster loss.
	var ckpt bytes.Buffer
	if err := engine.WriteCheckpoint(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint written: %.1f KB (graph + ownership + all distance vectors)\n",
		float64(ckpt.Len())/1024)

	restored, err := core.LoadCheckpoint(&ckpt, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// The restored engine starts from the checkpointed quality: it only
	// needs to rebuild boundary snapshots, not recompute distances.
	steps, err := restored.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored on a fresh cluster: %d RC steps to re-verify convergence (no recomputation)\n", steps)

	// And the restored analysis is still fully dynamic.
	batch := &core.VertexBatch{
		Count:    2,
		Internal: []core.BatchEdge{{A: 0, B: 1, W: 1}},
		External: []core.AttachEdge{{New: 0, To: 10, W: 1}},
	}
	if _, err := restored.ApplyVertexAdditions(batch, &core.CutEdgePS{Seed: 21}); err != nil {
		log.Fatal(err)
	}
	if _, err := restored.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("applied a post-restore vertex addition and re-converged — anytime, anywhere, and durable")
}
