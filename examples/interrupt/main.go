// Interrupt: the anytime property. Closeness on a large graph is expensive;
// this example interrupts the analysis at a fixed simulated-time budget and
// reads the best-so-far estimates — which are sound upper-bound distances
// whose quality improves monotonically with every recombination step. It
// prints the quality trajectory so the monotone convergence is visible.
package main

import (
	"fmt"
	"log"

	"aacc/internal/centrality"
	"aacc/internal/core"
	"aacc/internal/gen"
	"aacc/internal/sssp"
)

func main() {
	const (
		n      = 1500
		procs  = 16
		budget = 0.6 // fraction of full convergence budget to spend
	)
	g := gen.BarabasiAlbert(n, 2, 3, gen.Config{MaxWeight: 4})

	// Oracle for quality reporting only (a real deployment has no oracle —
	// that is why anytime guarantees matter).
	exactDist := sssp.APSP(g, 0)
	exact := centrality.FromDistances(exactDist, g.Vertices(), g.NumIDs())

	engine, err := core.New(g, core.Options{P: procs, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("step  top10-overlap  rank-corr  unknown-pairs")
	type snap struct {
		step    int
		overlap float64
	}
	var trajectory []snap
	for !engine.Converged() {
		rep, err := engine.Step()
		if err != nil {
			log.Fatal(err)
		}
		s := engine.Scores()
		de := centrality.CompareDistances(engine.Distances(), exactDist)
		overlap := centrality.TopKOverlap(s, exact, 10)
		corr := centrality.Spearman(s.Valid, exact.Valid, s.Harmonic, exact.Harmonic)
		fmt.Printf("%4d  %13.2f  %9.4f  %13d\n", rep.Step, overlap, corr, de.Unknown)
		trajectory = append(trajectory, snap{step: rep.Step, overlap: overlap})
	}
	total := len(trajectory)
	cut := int(budget * float64(total))
	if cut < 1 {
		cut = 1
	}
	fmt.Printf("\nfull convergence took %d RC steps.\n", total)
	fmt.Printf("interrupted at step %d (%.0f%% budget), the top-10 overlap was already %.2f —\n",
		trajectory[cut-1].step, budget*100, trajectory[cut-1].overlap)
	fmt.Println("anytime: interrupt whenever you must, the answer is usable and only improves.")
}
