// Quickstart: build a small social graph, run the anytime anywhere
// closeness-centrality engine on a simulated 4-processor cluster, and read
// the most central actors.
package main

import (
	"fmt"
	"log"

	"aacc/internal/centrality"
	"aacc/internal/core"
	"aacc/internal/graph"
)

func main() {
	// A toy collaboration network: two tight groups bridged by vertex 4.
	g := graph.New(9)
	for _, e := range [][2]graph.ID{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, // group A ... bridge
		{4, 5}, {5, 6}, {5, 7}, {6, 7}, {7, 8}, // bridge ... group B
	} {
		g.AddEdge(e[0], e[1], 1)
	}

	engine, err := core.New(g, core.Options{P: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := engine.Run(); err != nil {
		log.Fatal(err)
	}

	scores := engine.Scores()
	fmt.Println("closeness centrality (higher = more central):")
	for _, v := range centrality.TopK(scores, scores.Classic, 9) {
		fmt.Printf("  vertex %d: %.4f\n", v, scores.Classic[v])
	}

	// The graph just changed: a new actor joins, linked to both groups.
	batch := &core.VertexBatch{
		Count: 1,
		External: []core.AttachEdge{
			{New: 0, To: 2, W: 1},
			{New: 0, To: 7, W: 1},
		},
	}
	ids, err := engine.ApplyVertexAdditions(batch, &core.RoundRobinPS{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := engine.Run(); err != nil {
		log.Fatal(err)
	}
	scores = engine.Scores()
	fmt.Printf("\nafter the new actor (vertex %d) joined:\n", ids[0])
	for i, v := range centrality.TopK(scores, scores.Classic, 3) {
		fmt.Printf("  #%d vertex %d: %.4f\n", i+1, v, scores.Classic[v])
	}
	fmt.Printf("\nno restart happened: the engine folded the change in, in %d RC steps total\n",
		engine.StepCount())
}
