// Package aacc is a from-scratch reproduction of "Efficient Anytime
// Anywhere Algorithms for Closeness Centrality in Large and Dynamic Graphs"
// (Santos, Korah, Murugappan, Subramanian; IEEE IPDPSW 2016) and its
// vertex-additions companion paper.
//
// The system computes closeness centrality on large graphs that keep
// changing while the analysis runs. It decomposes the graph over P simulated
// processors (DD), seeds per-processor distance vectors with local Dijkstra
// runs (IA), and converges through distance-vector-routing recombination
// steps (RC) that exchange only updated boundary values. Dynamic changes —
// edge additions and deletions, weight changes, vertex additions and
// deletions — are folded into the running analysis without restarting, and
// intermediate results are sound, monotonically improving estimates
// (anytime) wherever the change occurred (anywhere).
//
// The public surface lives in the internal packages by design — this module
// is a research artifact whose entry points are the command-line tools:
//
//	cmd/aacc        run one analysis end to end
//	cmd/aacc-bench  regenerate every figure of the paper's evaluation
//	cmd/graphgen    generate the synthetic input graphs
//	cmd/partbench   compare the DD-phase partitioners
//
// and the runnable examples under examples/. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-vs-measured record.
package aacc
