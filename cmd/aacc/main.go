// Command aacc runs one anytime anywhere closeness-centrality analysis end
// to end on the simulated cluster: generate or load a graph, decompose it
// over P simulated processors, converge, and report the most central actors
// together with the simulated parallel cost.
//
// Examples:
//
//	aacc -n 4000 -p 16 -top 10
//	aacc -graph web.edges -p 8 -harmonic
//	aacc -gen community -n 2000 -anytime
//	aacc -changes stream.log -eager-deletions
//	aacc -runtime tcp     # exchanges over a real TCP loopback mesh
//
// The same binary also deploys as one coordinator plus N worker processes
// exchanging over real sockets (every process needs the same graph and
// analysis flags):
//
//	aacc -role coordinator -listen 127.0.0.1:4700 -cluster-workers 2 -n 4000 -p 16
//	aacc -role worker -coordinator 127.0.0.1:4700 -n 4000 -p 16
//	aacc -role worker -coordinator 127.0.0.1:4700 -n 4000 -p 16
package main

import (
	"log"
	"os"

	"aacc/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aacc: ")
	if err := cli.Analysis(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
