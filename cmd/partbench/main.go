// Command partbench compares the DD-phase partitioners (the METIS-family
// multilevel substitute and the baselines) on one graph: cut edges, balance
// and wall time — the ablation behind the domain-decomposition choice.
//
// Example:
//
//	partbench -n 20000 -p 16
package main

import (
	"log"
	"os"

	"aacc/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("partbench: ")
	if err := cli.PartBench(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
