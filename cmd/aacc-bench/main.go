// Command aacc-bench regenerates the paper's evaluation figures (and the
// titled paper's edge-change suites) on the simulated cluster and prints one
// table per figure, mirroring the series the paper reports.
//
// Examples:
//
//	aacc-bench                            # every experiment at default scale
//	aacc-bench -experiment fig4,fig8      # selected figures
//	aacc-bench -n 5000 -v                 # bigger replica, with progress
//	aacc-bench -list                      # available experiment ids
package main

import (
	"log"
	"os"

	"aacc/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aacc-bench: ")
	if err := cli.Bench(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
