// Command graphgen generates the synthetic graphs the experiments use
// (scale-free, random, small-world, community-structured, R-MAT) and writes
// them as edge-list or Pajek files.
//
// Examples:
//
//	graphgen -type ba -n 50000 -o web.edges
//	graphgen -type community -n 10000 -format pajek -o comm.net
//	graphgen -type rmat -n 16384 -m 4 -o kron.edges
package main

import (
	"log"
	"os"

	"aacc/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphgen: ")
	if err := cli.GraphGen(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}
